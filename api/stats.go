package api

// Typed /v1/stats wire shapes.
//
// Both servers expose GET /v1/stats: an impserve backend answers a
// ServiceStats document, an improuter front-end a StatsResponse aggregating
// its own routing counters with every backend's ServiceStats. These types
// are the wire contract — the router's aggregation, the cluster test
// harness and the impload/CI artifact tooling all decode into them instead
// of re-declaring anonymous structs or loose maps.
//
// The same numbers are exported as Prometheus text exposition on
// GET /metrics (see the README metric table); /v1/stats is the same
// registry read as one JSON document. Deprecated loose fields: Queued and
// Running remain as whole-service totals for pre-lane clients — the
// per-lane fields (QueuedInteractive/QueuedBulk, RunningInteractive/
// RunningBulk) are the authoritative decomposition.

// ServiceStats counts one impserve instance's outcomes since start.
type ServiceStats struct {
	Submitted uint64 `json:"submitted"`
	Executed  uint64 `json:"executed"`
	Deduped   uint64 `json:"deduped"`
	Cached    uint64 `json:"cached"`
	StoreHits uint64 `json:"store_hits"`
	StorePuts uint64 `json:"store_puts"`
	StoreLen  int    `json:"store_entries"`
	// Disk-layer counters; all zero when the results dir is unset.
	// StoreCorrupt counts on-disk entries evicted for failing their
	// integrity check.
	StoreDiskHits uint64 `json:"store_disk_hits,omitempty"`
	StoreDiskPuts uint64 `json:"store_disk_puts,omitempty"`
	StoreCorrupt  uint64 `json:"store_corrupt,omitempty"`
	// Queued and Running are whole-service totals (deprecated in favor of
	// the per-lane fields below, kept for pre-lane clients).
	Queued  int `json:"queued"`
	Running int `json:"running"`
	// Per-lane queue depth and occupancy: interactive submissions may not
	// be starved by bulk sweeps, and these are the numbers that prove it.
	QueuedInteractive  int `json:"queued_interactive"`
	QueuedBulk         int `json:"queued_bulk"`
	RunningInteractive int `json:"running_interactive"`
	RunningBulk        int `json:"running_bulk"`
	// Admission-control counters: QuotaRejections counts submissions
	// bounced for an empty tenant token bucket, QueueRejections those
	// bounced by queue-depth admission (both answered 429 + Retry-After).
	QuotaRejections uint64 `json:"quota_rejections,omitempty"`
	QueueRejections uint64 `json:"queue_rejections,omitempty"`
	// Checkpointed-sweep counters; all zero when checkpointing is off.
	// CheckpointHits counts sweep points forked from a restored simulation
	// checkpoint instead of simulated cold; CheckpointMisses counts shared
	// replays simulated once and published to the checkpoint cache;
	// PrefixCyclesSaved totals the simulated cycles those forks did not
	// have to re-execute.
	CheckpointHits    uint64 `json:"checkpoint_hits,omitempty"`
	CheckpointMisses  uint64 `json:"checkpoint_misses,omitempty"`
	PrefixCyclesSaved uint64 `json:"prefix_cycles_saved,omitempty"`
}

// BackendStats is one backend's slice of the router's aggregated stats:
// the router's per-backend routing counters plus, when the backend was
// reachable at snapshot time, its own ServiceStats.
type BackendStats struct {
	Name    string `json:"name"`
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	LastErr string `json:"last_err,omitempty"`
	// LastProbe is the RFC3339 time of the most recent health-probe
	// *attempt* (success or failure); empty until the first probe fires.
	LastProbe string `json:"last_probe,omitempty"`
	// Submits counts jobs this backend accepted via the router; the
	// locality tests assert on it (identical specs land on one backend).
	Submits uint64 `json:"submits"`
	// Proxied counts non-submit requests (status/result/events/cancel).
	Proxied  uint64 `json:"proxied"`
	Errors   uint64 `json:"errors"`
	Evicted  uint64 `json:"evictions"`
	Readmits uint64 `json:"readmissions"`
	InFlight int64  `json:"in_flight"`
	// ReplicaPuts counts result copies the router wrote into this
	// backend's store (replication fan-out; read-repairs are counted
	// fleet-wide on the router instead).
	ReplicaPuts uint64 `json:"replica_puts"`
	// Service is the backend's own /v1/stats payload, when reachable.
	Service *ServiceStats `json:"service,omitempty"`
}

// StatsResponse is the improuter's aggregated /v1/stats payload.
type StatsResponse struct {
	BackendCount int `json:"backends"`
	HealthyCount int `json:"healthy"`
	// TopologyVersion identifies the membership snapshot these stats were
	// read under (bumped once per join or leave); EffectiveReplicas is the
	// replication factor that snapshot can sustain —
	// min(configured -replicas, member count).
	TopologyVersion   uint64 `json:"topology_version"`
	EffectiveReplicas int    `json:"effective_replicas"`
	// Membership counters: Joins and Leaves count admin-surface ring
	// changes; HandoffKeys counts results bulk-copied between backends
	// during those changes (join warm-up and graceful-leave hand-off).
	Joins       uint64 `json:"joins"`
	Leaves      uint64 `json:"leaves"`
	HandoffKeys uint64 `json:"handoff_keys"`
	// Submitted counts submissions accepted by some backend; Rehashes
	// counts retry attempts that moved a submission off its owner; Failed
	// counts submissions no backend would take.
	Submitted uint64 `json:"submitted"`
	Rehashes  uint64 `json:"rehashes"`
	Failed    uint64 `json:"failed"`
	// QuotaRejections counts submissions the router bounced with 429
	// because the tenant's token bucket was empty (router-level admission;
	// the backends count their own in ServiceStats.QuotaRejections).
	QuotaRejections uint64 `json:"quota_rejections,omitempty"`
	// Replication counters. ReplicaPuts counts result copies written to
	// ring successors; ReplicaErrors counts replication attempts that
	// failed against some backend. ReadRepairs counts submissions whose
	// cold target was refilled from a successor's replica before the work
	// was forwarded; RepairMisses counts submissions where the target and
	// every probed successor missed — i.e. genuinely new work.
	ReplicaPuts   uint64 `json:"replica_puts"`
	ReplicaErrors uint64 `json:"replica_errors"`
	ReadRepairs   uint64 `json:"read_repairs"`
	RepairMisses  uint64 `json:"repair_misses"`
	// Backends carries per-backend routing counters plus, when reachable,
	// each backend's own service stats.
	Backends []BackendStats `json:"per_backend"`
}
