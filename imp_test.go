package imp

import (
	"encoding/json"
	"strings"
	"testing"
)

// tiny keeps API tests fast: 4 cores, 5% inputs.
var tiny = ExpOptions{Cores: 4, Scale: 0.05}

func TestRunBasic(t *testing.T) {
	res, err := Run(Config{Workload: "pagerank", Cores: 4, Scale: 0.05, System: SystemBaseline})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.Instructions == 0 {
		t.Errorf("degenerate result: %+v", res)
	}
	if res.MissFracIndirect+res.MissFracStream+res.MissFracOther < 0.99 {
		t.Errorf("miss fractions do not sum to 1: %+v", res)
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	if _, err := Run(Config{Workload: "nope", Cores: 4}); err == nil {
		t.Error("accepted unknown workload")
	}
}

func TestRunUnknownSystem(t *testing.T) {
	if _, err := Run(Config{Workload: "dense", Cores: 4, Scale: 0.05, System: System(99)}); err == nil {
		t.Error("accepted unknown system")
	}
}

func TestSystemsOrdering(t *testing.T) {
	prog, err := BuildProgram("spmv", 4, 0.05, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	cycles := map[System]int64{}
	for _, sys := range []System{SystemIdeal, SystemPerfect, SystemIMP, SystemBaseline, SystemNone} {
		res, err := RunProgram(prog, Config{Cores: 4, System: sys})
		if err != nil {
			t.Fatalf("%v: %v", sys, err)
		}
		cycles[sys] = res.Cycles
	}
	if !(cycles[SystemIdeal] <= cycles[SystemPerfect]) {
		t.Errorf("ideal (%d) > perfect (%d)", cycles[SystemIdeal], cycles[SystemPerfect])
	}
	if !(cycles[SystemIMP] <= cycles[SystemBaseline]) {
		t.Errorf("imp (%d) > base (%d)", cycles[SystemIMP], cycles[SystemBaseline])
	}
	if !(cycles[SystemBaseline] <= cycles[SystemNone]) {
		t.Errorf("base (%d) > none (%d)", cycles[SystemBaseline], cycles[SystemNone])
	}
}

func TestProgramReuseMatchesDirectRun(t *testing.T) {
	prog, err := BuildProgram("lsh", 4, 0.05, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunProgram(prog, Config{Cores: 4, System: SystemIMP})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Workload: "lsh", Cores: 4, Scale: 0.05, System: SystemIMP})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles {
		t.Errorf("cached program run (%d) differs from direct run (%d)", a.Cycles, b.Cycles)
	}
	if prog.Accesses() == 0 || prog.Instructions() == 0 {
		t.Error("program accessors returned zero")
	}
}

func TestIMPParamOverrides(t *testing.T) {
	prog, err := BuildProgram("spmv", 4, 0.05, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	small, err := RunProgram(prog, Config{Cores: 4, System: SystemIMP, MaxPrefetchDistance: 2})
	if err != nil {
		t.Fatal(err)
	}
	big, err := RunProgram(prog, Config{Cores: 4, System: SystemIMP, MaxPrefetchDistance: 16})
	if err != nil {
		t.Fatal(err)
	}
	if small.Cycles == big.Cycles {
		t.Log("distance 2 and 16 gave identical cycles (possible on tiny inputs)")
	}
	if small.PatternsDetected == 0 || big.PatternsDetected == 0 {
		t.Error("IMP detected no patterns with overridden parameters")
	}
}

func TestWorkloadsList(t *testing.T) {
	if len(Workloads()) != 8 || len(PaperWorkloads()) != 7 {
		t.Errorf("Workloads() = %v", Workloads())
	}
}

func TestStorageCostAPI(t *testing.T) {
	c := StorageCost(false)
	if c.TotalBits() < 4500 || c.TotalBits() > 6500 {
		t.Errorf("storage = %d bits, want ~5.5Kbit", c.TotalBits())
	}
	if StorageCost(true).GPBits == 0 {
		t.Error("partial storage missing GP bits")
	}
}

func TestExperimentRegistry(t *testing.T) {
	want := []string{"fig1", "fig2", "fig9", "table3", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16", "storage", "ghb"}
	got := Experiments.IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("IDs[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if _, err := Experiments.Get("nope"); err == nil {
		t.Error("Get accepted unknown id")
	}
	if _, err := Experiments.Run("nope", tiny); err == nil {
		t.Error("Run accepted unknown id")
	}
}

func TestExperimentStorage(t *testing.T) {
	tbl, err := Experiments.Run("storage", tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Errorf("storage rows = %d, want 5", len(tbl.Rows))
	}
	if !strings.Contains(tbl.String(), "PT") {
		t.Error("storage table missing PT row")
	}
}

func TestExperimentFig1Tiny(t *testing.T) {
	tbl, err := Experiments.Run("fig1", ExpOptions{Cores: 4, Scale: 0.05, Workloads: []string{"spmv", "pagerank"}})
	if err != nil {
		t.Fatal(err)
	}
	// 2 workloads + avg row.
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		sum := 0.0
		for _, v := range r.Values {
			if v < 0 || v > 1 {
				t.Errorf("%s: fraction %v out of range", r.Label, v)
			}
			sum += v
		}
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("%s: fractions sum to %v", r.Label, sum)
		}
	}
}

func TestExperimentFig9Tiny(t *testing.T) {
	tbl, err := Experiments.Run("fig9", ExpOptions{Cores: 4, Scale: 0.05, Workloads: []string{"spmv"}})
	if err != nil {
		t.Fatal(err)
	}
	r := tbl.Rows[0]
	if r.Values[0] != 1 {
		t.Errorf("perfpref column = %v, want 1 (normalization anchor)", r.Values[0])
	}
	// IMP must beat base on spmv.
	if r.Values[2] <= r.Values[1] {
		t.Errorf("imp (%v) not above base (%v)", r.Values[2], r.Values[1])
	}
}

func TestExperimentFig12Tiny(t *testing.T) {
	tbl, err := Experiments.Run("fig12", ExpOptions{Cores: 4, Scale: 0.05, Workloads: []string{"pagerank"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range tbl.Rows[0].Values {
		if v <= 0 || v > 1.6 {
			t.Errorf("traffic ratio %v out of plausible range", v)
		}
	}
}

func TestExperimentSensitivityTiny(t *testing.T) {
	tbl, err := Experiments.Run("fig16", ExpOptions{Cores: 4, Scale: 0.05, Workloads: []string{"spmv"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Columns) != 4 {
		t.Fatalf("columns = %v", tbl.Columns)
	}
	// The default (16) column must be exactly 1.
	if tbl.Rows[0].Values[2] != 1 {
		t.Errorf("default distance not normalized to 1: %v", tbl.Rows[0].Values)
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := &Table{ID: "x", Title: "t", Columns: []string{"a", "b"}}
	tbl.AddRow("row1", 1, 2)
	tbl.AddRow("row2", 3, 4)
	tbl.AddAverage()
	s := tbl.String()
	if !strings.Contains(s, "row1") || !strings.Contains(s, "avg") {
		t.Errorf("bad table output:\n%s", s)
	}
	if tbl.Rows[2].Values[0] != 2 || tbl.Rows[2].Values[1] != 3 {
		t.Errorf("average row = %v", tbl.Rows[2].Values)
	}
}

func TestProgressCallback(t *testing.T) {
	var lines []string
	_, err := Experiments.Run("fig1", ExpOptions{
		Cores: 4, Scale: 0.05, Workloads: []string{"dense"},
		Progress: func(s string) { lines = append(lines, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Error("no progress lines")
	}
}

// TestSystemJSONRoundTrip pins the serializable-Config contract the
// experiment service depends on: System marshals as its stable paper name
// and unmarshals from either a name or a legacy number.
func TestSystemJSONRoundTrip(t *testing.T) {
	for s := SystemBaseline; s <= SystemNone; s++ {
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		if want := `"` + s.String() + `"`; string(data) != want {
			t.Errorf("System %d marshals as %s, want %s", s, data, want)
		}
		var back System
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != s {
			t.Errorf("round trip changed %v to %v", s, back)
		}
	}
	var legacy System
	if err := json.Unmarshal([]byte("1"), &legacy); err != nil || legacy != SystemIMP {
		t.Errorf("legacy numeric unmarshal: %v, %v", legacy, err)
	}
	var bad System
	if err := json.Unmarshal([]byte(`"warp-drive"`), &bad); err == nil {
		t.Error("unknown system name unmarshaled successfully")
	}
	if err := json.Unmarshal([]byte("99"), &bad); err == nil {
		t.Error("unknown system number unmarshaled successfully")
	}
}

// TestConfigJSONRoundTrip: a full Config survives the wire (the job-spec
// format of the experiment service).
func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := Config{
		Workload: "spmv", Cores: 16, System: SystemIMPPartial, Scale: 0.5,
		OutOfOrder: true, Seed: 7, PTEntries: 32, IPDEntries: 8, MaxPrefetchDistance: 4,
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var back Config
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != cfg {
		t.Errorf("round trip changed config: %+v vs %+v", back, cfg)
	}
}

// TestParseSystemCoversAllNames: every name SystemNames reports parses back
// to its constant.
func TestParseSystemCoversAllNames(t *testing.T) {
	names := SystemNames()
	if len(names) != 9 {
		t.Fatalf("SystemNames returned %d names: %v", len(names), names)
	}
	for _, n := range names {
		s, err := ParseSystem(n)
		if err != nil {
			t.Fatal(err)
		}
		if s.String() != n {
			t.Errorf("ParseSystem(%q) = %v", n, s)
		}
	}
	if _, err := ParseSystem("warp-drive"); err == nil {
		t.Error("unknown name parsed successfully")
	}
}
