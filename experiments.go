package imp

import (
	"context"
	"fmt"
	"sort"
	"time"
)

// ExpOptions parameterize an experiment run. The execution knobs
// (Parallelism, Context, OnProgress, Gate, Seed, Checkpoints) live in the
// embedded RunOptions, shared with SweepOptions; existing field paths like
// opt.Parallelism keep working through promotion.
type ExpOptions struct {
	// Cores (default 64, the paper's headline configuration).
	Cores int
	// Scale multiplies workload input sizes (default 1.0).
	Scale float64
	// Workloads restricts the workload set (default: the experiment's own).
	Workloads []string
	// Progress, when non-nil, receives one line per completed simulation.
	// Kept for backward compatibility; prefer OnProgress.
	Progress func(string)

	RunOptions
}

// ProgressEvent describes one completed (or failed) simulation point of an
// experiment sweep.
type ProgressEvent struct {
	// Experiment is the experiment id ("fig9", "table3", ...).
	Experiment string
	// Workload and System identify the simulated point.
	Workload string
	System   System
	// Point is the point's index in the sweep, Total the sweep size, and
	// Done the number of points finished so far (including this one).
	Point, Total, Done int
	// Cycles is the simulated cycle count (0 if the point failed).
	Cycles int64
	// Elapsed is the point's wall-clock simulation time.
	Elapsed time.Duration
	// Err is the point's failure, nil on success.
	Err error
}

func (o ExpOptions) withDefaults() ExpOptions {
	if o.Cores <= 0 {
		o.Cores = 64
	}
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	return o
}

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func(opt ExpOptions) (*Table, error)
}

// ExperimentSet is the registry of all reproducible tables and figures.
type ExperimentSet struct {
	list []*Experiment
}

// Experiments holds every table/figure runner, keyed as in DESIGN.md.
var Experiments = &ExperimentSet{}

// IDs returns the registered experiment ids in definition order.
func (s *ExperimentSet) IDs() []string {
	out := make([]string, len(s.list))
	for i, e := range s.list {
		out[i] = e.ID
	}
	return out
}

// Get returns the experiment with the given id.
func (s *ExperimentSet) Get(id string) (*Experiment, error) {
	for _, e := range s.list {
		if e.ID == id {
			return e, nil
		}
	}
	known := s.IDs()
	sort.Strings(known)
	return nil, fmt.Errorf("imp: unknown experiment %q (have %v)", id, known)
}

// Run executes the experiment with the given id.
func (s *ExperimentSet) Run(id string, opt ExpOptions) (*Table, error) {
	e, err := s.Get(id)
	if err != nil {
		return nil, err
	}
	return e.Run(opt)
}

func registerExp(id, title string, run func(opt ExpOptions) (*Table, error)) {
	Experiments.list = append(Experiments.list, &Experiment{ID: id, Title: title, Run: run})
}

// runner resolves traces for one experiment through the shared progcache
// (in-process LRU + on-disk binary traces — see internal/progcache) and
// fans simulation points out over the harness worker pool. It is safe for
// the concurrent use the sweep engine makes of it: the cache builds each
// trace exactly once and latecomers share the outcome.
type runner struct {
	id  string
	opt ExpOptions
}

func newRunner(id string, opt ExpOptions) *runner {
	return &runner{id: id, opt: opt.withDefaults()}
}

func (r *runner) workloads(def []string) []string {
	if len(r.opt.Workloads) > 0 {
		return r.opt.Workloads
	}
	return def
}

// expPoint is one (workload, config) cell of an experiment's sweep grid.
type expPoint struct {
	workload string
	cfg      Config
}

// sweep simulates all points concurrently (bounded by opt.Parallelism) and
// returns their results in point order, so assembled tables are identical
// at any worker count. Each point's config is fully resolved here (workload,
// cores, scale, derived trace seed); trace builds dedupe through the shared
// progcache, and with opt.Checkpoints enabled, points whose effective
// simulation is identical additionally share one replay through the
// checkpoint cache — common across experiments: fig2 and table3 both
// simulate every workload's Perfect and Baseline cells.
func (r *runner) sweep(points []expPoint) ([]*Result, error) {
	pts := make([]simPoint, len(points))
	for i, p := range points {
		cfg := p.cfg
		cfg.Workload = p.workload
		cfg.Cores = r.opt.Cores
		cfg.Scale = r.opt.Scale
		cfg.Seed = ExpSeed(r.opt.Seed, p.workload)
		pts[i] = simPoint{
			meta: sweepMeta{experiment: r.id, workload: p.workload, system: cfg.System},
			run: func(ctx context.Context) (*Result, error) {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				return runCfg(cfg, r.opt.Checkpoints)
			},
		}
		pts[i].prefixKey, pts[i].runPrefix = prefixFor(cfg, r.opt.Checkpoints)
	}
	return sweepSim(r.opt.ctx(nil), r.opt.RunOptions, pts, r.opt.Progress)
}

// grid sweeps workloads × cfgs and returns results indexed [workload][cfg].
func (r *runner) grid(workloads []string, cfgs []Config) ([][]*Result, error) {
	points := make([]expPoint, 0, len(workloads)*len(cfgs))
	for _, w := range workloads {
		for _, cfg := range cfgs {
			points = append(points, expPoint{workload: w, cfg: cfg})
		}
	}
	flat, err := r.sweep(points)
	if err != nil {
		return nil, err
	}
	out := make([][]*Result, len(workloads))
	for wi := range workloads {
		out[wi] = flat[wi*len(cfgs) : (wi+1)*len(cfgs)]
	}
	return out, nil
}

func init() {
	registerExp("fig1", "L1 cache miss breakdown (indirect / stream / other)", expFig1)
	registerExp("fig2", "Runtime normalized to Ideal, stall attribution + PerfPref", expFig2)
	registerExp("fig9", "Performance normalized to Perfect Prefetching (PerfPref/Base/IMP/SWPref)", expFig9)
	registerExp("table3", "Prefetch coverage / accuracy / latency: stream vs stream+IMP", expTable3)
	registerExp("fig10", "Instruction overhead of software prefetching (normalized to Base)", expFig10)
	registerExp("fig11", "Partial cacheline accessing performance (normalized to PerfPref)", expFig11)
	registerExp("fig12", "NoC and DRAM traffic of partial accessing (normalized to full line)", expFig12)
	registerExp("fig13", "In-order vs out-of-order cores (normalized to Base on OoO)", expFig13)
	registerExp("fig14", "Sensitivity to PT size (8/16/32, normalized to 16)", expFig14)
	registerExp("fig15", "Sensitivity to IPD size (2/4/8, normalized to 4)", expFig15)
	registerExp("fig16", "Sensitivity to max prefetch distance (4/8/16/32, normalized to 16)", expFig16)
	registerExp("storage", "IMP storage cost (§6.4)", expStorage)
	registerExp("ghb", "GHB correlation prefetcher vs stream and IMP (§5.4)", expGHB)
}

func expFig1(opt ExpOptions) (*Table, error) {
	r := newRunner("fig1", opt)
	t := &Table{ID: "fig1", Title: "miss fraction by access type (Base, stream prefetcher)",
		Columns: []string{"indirect", "stream", "other"}}
	ws := r.workloads(PaperWorkloads())
	grid, err := r.grid(ws, []Config{{System: SystemBaseline}})
	if err != nil {
		return nil, err
	}
	for wi, w := range ws {
		res := grid[wi][0]
		t.AddRow(w, res.MissFracIndirect, res.MissFracStream, res.MissFracOther)
	}
	t.AddAverage()
	return t, nil
}

func expFig2(opt ExpOptions) (*Table, error) {
	r := newRunner("fig2", opt)
	t := &Table{ID: "fig2", Title: "runtime normalized to Ideal",
		Columns: []string{"indirect", "other", "total", "perfpref"}}
	ws := r.workloads(PaperWorkloads())
	grid, err := r.grid(ws, []Config{
		{System: SystemIdeal}, {System: SystemBaseline}, {System: SystemPerfect},
	})
	if err != nil {
		return nil, err
	}
	for wi, w := range ws {
		ideal, base, perf := grid[wi][0], grid[wi][1], grid[wi][2]
		norm := float64(base.Cycles) / float64(ideal.Cycles)
		// Split the normalized runtime by stall attribution.
		stalls := float64(base.StallIndirect + base.StallOther)
		indFrac := 0.0
		if stalls > 0 {
			// Fraction of time beyond Ideal spent on indirect stalls.
			indFrac = float64(base.StallIndirect) / stalls
		}
		beyond := norm - 1
		if beyond < 0 {
			beyond = 0
		}
		t.AddRow(w, beyond*indFrac, norm-beyond*indFrac,
			norm, float64(perf.Cycles)/float64(ideal.Cycles))
	}
	t.AddAverage()
	return t, nil
}

func expFig9(opt ExpOptions) (*Table, error) {
	r := newRunner("fig9", opt)
	t := &Table{ID: "fig9", Title: fmt.Sprintf("normalized throughput, %d cores (PerfPref = 1)", opt.withDefaults().Cores),
		Columns: []string{"perfpref", "base", "imp", "swpref"}}
	ws := r.workloads(PaperWorkloads())
	grid, err := r.grid(ws, []Config{
		{System: SystemPerfect}, {System: SystemBaseline},
		{System: SystemIMP}, {System: SystemSWPrefetch},
	})
	if err != nil {
		return nil, err
	}
	for wi, w := range ws {
		perf := grid[wi][0]
		vals := []float64{1}
		for _, res := range grid[wi][1:] {
			vals = append(vals, float64(perf.Cycles)/float64(res.Cycles))
		}
		t.AddRow(w, vals...)
	}
	t.AddAverage()
	return t, nil
}

func expTable3(opt ExpOptions) (*Table, error) {
	r := newRunner("table3", opt)
	t := &Table{ID: "table3", Title: "prefetching effectiveness (latency normalized to PerfPref)",
		Columns: []string{"str.cov", "str.acc", "str.lat", "imp.cov", "imp.acc", "imp.lat"}}
	ws := r.workloads(PaperWorkloads())
	grid, err := r.grid(ws, []Config{
		{System: SystemPerfect}, {System: SystemBaseline}, {System: SystemIMP},
	})
	if err != nil {
		return nil, err
	}
	for wi, w := range ws {
		perf, base, impr := grid[wi][0], grid[wi][1], grid[wi][2]
		t.AddRow(w,
			base.Coverage, base.Accuracy, base.AMAT/perf.AMAT,
			impr.Coverage, impr.Accuracy, impr.AMAT/perf.AMAT)
	}
	t.AddAverage()
	return t, nil
}

func expFig10(opt ExpOptions) (*Table, error) {
	r := newRunner("fig10", opt)
	t := &Table{ID: "fig10", Title: "instruction count normalized to Base",
		Columns: []string{"base", "imp", "swpref"}}
	ws := r.workloads(PaperWorkloads())
	grid, err := r.grid(ws, []Config{
		{System: SystemBaseline}, {System: SystemIMP}, {System: SystemSWPrefetch},
	})
	if err != nil {
		return nil, err
	}
	for wi, w := range ws {
		base, impr, sw := grid[wi][0], grid[wi][1], grid[wi][2]
		b := float64(base.Instructions)
		t.AddRow(w, 1, float64(impr.Instructions)/b, float64(sw.Instructions)/b)
	}
	t.AddAverage()
	return t, nil
}

func expFig11(opt ExpOptions) (*Table, error) {
	r := newRunner("fig11", opt)
	t := &Table{ID: "fig11", Title: fmt.Sprintf("partial cacheline accessing, %d cores (normalized to PerfPref)", opt.withDefaults().Cores),
		Columns: []string{"imp", "partial-noc", "partial-noc+dram", "ideal"}}
	ws := r.workloads(PaperWorkloads())
	grid, err := r.grid(ws, []Config{
		{System: SystemPerfect}, {System: SystemIMP},
		{System: SystemIMPPartialNoC}, {System: SystemIMPPartial}, {System: SystemIdeal},
	})
	if err != nil {
		return nil, err
	}
	for wi, w := range ws {
		perf := grid[wi][0]
		vals := make([]float64, 0, 4)
		for _, res := range grid[wi][1:] {
			vals = append(vals, float64(perf.Cycles)/float64(res.Cycles))
		}
		t.AddRow(w, vals...)
	}
	t.AddAverage()
	return t, nil
}

func expFig12(opt ExpOptions) (*Table, error) {
	r := newRunner("fig12", opt)
	t := &Table{ID: "fig12", Title: "NoC and DRAM traffic with partial accessing (normalized to full-line IMP)",
		Columns: []string{"noc", "dram"}}
	ws := r.workloads(PaperWorkloads())
	grid, err := r.grid(ws, []Config{{System: SystemIMP}, {System: SystemIMPPartial}})
	if err != nil {
		return nil, err
	}
	for wi, w := range ws {
		full, part := grid[wi][0], grid[wi][1]
		t.AddRow(w,
			float64(part.NoCFlitHops)/float64(full.NoCFlitHops),
			float64(part.DRAMBytes)/float64(full.DRAMBytes))
	}
	t.AddAverage()
	return t, nil
}

func expFig13(opt ExpOptions) (*Table, error) {
	r := newRunner("fig13", opt)
	t := &Table{ID: "fig13", Title: "in-order vs out-of-order cores (normalized to Base on OoO)",
		Columns: []string{"base_io", "base_ooo", "imp_io", "imp_ooo", "partial_io", "partial_ooo"}}
	// (io, ooo) per system, as the columns state; Base/OoO is the reference.
	cfgs := make([]Config, 0, 6)
	for _, sys := range []System{SystemBaseline, SystemIMP, SystemIMPPartial} {
		for _, ooo := range []bool{false, true} {
			cfgs = append(cfgs, Config{System: sys, OutOfOrder: ooo})
		}
	}
	ws := r.workloads([]string{"pagerank", "sgd"})
	grid, err := r.grid(ws, cfgs)
	if err != nil {
		return nil, err
	}
	for wi, w := range ws {
		ref := grid[wi][1] // Base, OutOfOrder
		vals := make([]float64, 0, 6)
		for _, res := range grid[wi] {
			vals = append(vals, float64(ref.Cycles)/float64(res.Cycles))
		}
		t.AddRow(w, vals...)
	}
	return t, nil
}

func expSensitivity(id, title string, values []int, def int, set func(*Config, int)) func(ExpOptions) (*Table, error) {
	return func(opt ExpOptions) (*Table, error) {
		r := newRunner(id, opt)
		cols := make([]string, len(values))
		cfgs := make([]Config, len(values))
		ref := -1
		for i, v := range values {
			cols[i] = fmt.Sprintf("%d", v)
			cfgs[i] = Config{System: SystemIMP}
			set(&cfgs[i], v)
			if v == def {
				ref = i
			}
		}
		if ref < 0 {
			return nil, fmt.Errorf("imp: %s: default %d not in sweep values %v", id, def, values)
		}
		t := &Table{ID: id, Title: title, Columns: cols,
			Notes: fmt.Sprintf("normalized to the default value %d", def)}
		ws := r.workloads(PaperWorkloads())
		grid, err := r.grid(ws, cfgs)
		if err != nil {
			return nil, err
		}
		for wi, w := range ws {
			vals := make([]float64, len(values))
			for i, res := range grid[wi] {
				vals[i] = float64(grid[wi][ref].Cycles) / float64(res.Cycles)
			}
			t.AddRow(w, vals...)
		}
		t.AddAverage()
		return t, nil
	}
}

func expFig14(opt ExpOptions) (*Table, error) {
	return expSensitivity("fig14", "PT size sensitivity", []int{8, 16, 32}, 16,
		func(c *Config, v int) { c.PTEntries = v })(opt)
}

func expFig15(opt ExpOptions) (*Table, error) {
	return expSensitivity("fig15", "IPD size sensitivity", []int{2, 4, 8}, 4,
		func(c *Config, v int) { c.IPDEntries = v })(opt)
}

func expFig16(opt ExpOptions) (*Table, error) {
	return expSensitivity("fig16", "max prefetch distance sensitivity", []int{4, 8, 16, 32}, 16,
		func(c *Config, v int) { c.MaxPrefetchDistance = v })(opt)
}

func expStorage(opt ExpOptions) (*Table, error) {
	t := &Table{ID: "storage", Title: "IMP storage cost in bits (§6.4)",
		Columns: []string{"bits", "per-entry"},
		Notes:   "paper: PT < 2 Kbit, IPD ~3.5 Kbit, total ~5.5 Kbit (0.7 KB); GP ~3.4 Kbit"}
	c := StorageCost(false)
	t.AddRow("PT(indirect)", float64(c.PTBits), float64(c.PTEntryBits))
	t.AddRow("IPD", float64(c.IPDBits), float64(c.IPDEntryBits))
	t.AddRow("total", float64(c.TotalBits()), 0)
	cg := StorageCost(true)
	t.AddRow("GP", float64(cg.GPBits), float64(cg.GPEntryBits))
	t.AddRow("total+GP", float64(cg.TotalBits()), 0)
	return t, nil
}

func expGHB(opt ExpOptions) (*Table, error) {
	r := newRunner("ghb", opt)
	t := &Table{ID: "ghb", Title: "GHB adds (almost) nothing over stream on indirect workloads (§5.4)",
		Columns: []string{"base", "ghb", "imp"}}
	ws := r.workloads(PaperWorkloads())
	grid, err := r.grid(ws, []Config{
		{System: SystemBaseline}, {System: SystemGHB}, {System: SystemIMP},
	})
	if err != nil {
		return nil, err
	}
	for wi, w := range ws {
		base, ghb, impr := grid[wi][0], grid[wi][1], grid[wi][2]
		t.AddRow(w, 1,
			float64(base.Cycles)/float64(ghb.Cycles),
			float64(base.Cycles)/float64(impr.Cycles))
	}
	t.AddAverage()
	return t, nil
}
