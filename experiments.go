package imp

import (
	"fmt"
	"sort"
)

// ExpOptions parameterize an experiment run.
type ExpOptions struct {
	// Cores (default 64, the paper's headline configuration).
	Cores int
	// Scale multiplies workload input sizes (default 1.0).
	Scale float64
	// Workloads restricts the workload set (default: the experiment's own).
	Workloads []string
	// Progress, when non-nil, receives one line per completed simulation.
	Progress func(string)
}

func (o ExpOptions) withDefaults() ExpOptions {
	if o.Cores <= 0 {
		o.Cores = 64
	}
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	return o
}

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func(opt ExpOptions) (*Table, error)
}

// ExperimentSet is the registry of all reproducible tables and figures.
type ExperimentSet struct {
	list []*Experiment
}

// Experiments holds every table/figure runner, keyed as in DESIGN.md.
var Experiments = &ExperimentSet{}

// IDs returns the registered experiment ids in definition order.
func (s *ExperimentSet) IDs() []string {
	out := make([]string, len(s.list))
	for i, e := range s.list {
		out[i] = e.ID
	}
	return out
}

// Get returns the experiment with the given id.
func (s *ExperimentSet) Get(id string) (*Experiment, error) {
	for _, e := range s.list {
		if e.ID == id {
			return e, nil
		}
	}
	known := s.IDs()
	sort.Strings(known)
	return nil, fmt.Errorf("imp: unknown experiment %q (have %v)", id, known)
}

// Run executes the experiment with the given id.
func (s *ExperimentSet) Run(id string, opt ExpOptions) (*Table, error) {
	e, err := s.Get(id)
	if err != nil {
		return nil, err
	}
	return e.Run(opt)
}

func registerExp(id, title string, run func(opt ExpOptions) (*Table, error)) {
	Experiments.list = append(Experiments.list, &Experiment{ID: id, Title: title, Run: run})
}

// runner caches built traces across the configurations of one experiment.
type runner struct {
	opt   ExpOptions
	progs map[string]*Program // key: workload|swpref
}

func newRunner(opt ExpOptions) *runner {
	return &runner{opt: opt.withDefaults(), progs: make(map[string]*Program)}
}

func (r *runner) workloads(def []string) []string {
	if len(r.opt.Workloads) > 0 {
		return r.opt.Workloads
	}
	return def
}

func (r *runner) program(name string, swpref bool) (*Program, error) {
	key := name
	if swpref {
		key += "|sw"
	}
	if p, ok := r.progs[key]; ok {
		return p, nil
	}
	p, err := BuildProgram(name, r.opt.Cores, r.opt.Scale, swpref, 0)
	if err != nil {
		return nil, err
	}
	r.progs[key] = p
	return p, nil
}

// run simulates workload name under cfg (reusing the cached trace).
func (r *runner) run(name string, cfg Config) (*Result, error) {
	cfg.Cores = r.opt.Cores
	cfg.Scale = r.opt.Scale
	prog, err := r.program(name, cfg.System == SystemSWPrefetch)
	if err != nil {
		return nil, err
	}
	res, err := RunProgram(prog, cfg)
	if err != nil {
		return nil, err
	}
	if r.opt.Progress != nil {
		r.opt.Progress(fmt.Sprintf("%s/%s: %d cycles", name, cfg.System, res.Cycles))
	}
	return res, nil
}

func init() {
	registerExp("fig1", "L1 cache miss breakdown (indirect / stream / other)", expFig1)
	registerExp("fig2", "Runtime normalized to Ideal, stall attribution + PerfPref", expFig2)
	registerExp("fig9", "Performance normalized to Perfect Prefetching (PerfPref/Base/IMP/SWPref)", expFig9)
	registerExp("table3", "Prefetch coverage / accuracy / latency: stream vs stream+IMP", expTable3)
	registerExp("fig10", "Instruction overhead of software prefetching (normalized to Base)", expFig10)
	registerExp("fig11", "Partial cacheline accessing performance (normalized to PerfPref)", expFig11)
	registerExp("fig12", "NoC and DRAM traffic of partial accessing (normalized to full line)", expFig12)
	registerExp("fig13", "In-order vs out-of-order cores (normalized to Base on OoO)", expFig13)
	registerExp("fig14", "Sensitivity to PT size (8/16/32, normalized to 16)", expFig14)
	registerExp("fig15", "Sensitivity to IPD size (2/4/8, normalized to 4)", expFig15)
	registerExp("fig16", "Sensitivity to max prefetch distance (4/8/16/32, normalized to 16)", expFig16)
	registerExp("storage", "IMP storage cost (§6.4)", expStorage)
	registerExp("ghb", "GHB correlation prefetcher vs stream and IMP (§5.4)", expGHB)
}

func expFig1(opt ExpOptions) (*Table, error) {
	r := newRunner(opt)
	t := &Table{ID: "fig1", Title: "miss fraction by access type (Base, stream prefetcher)",
		Columns: []string{"indirect", "stream", "other"}}
	for _, w := range r.workloads(PaperWorkloads()) {
		res, err := r.run(w, Config{System: SystemBaseline})
		if err != nil {
			return nil, err
		}
		t.AddRow(w, res.MissFracIndirect, res.MissFracStream, res.MissFracOther)
	}
	t.AddAverage()
	return t, nil
}

func expFig2(opt ExpOptions) (*Table, error) {
	r := newRunner(opt)
	t := &Table{ID: "fig2", Title: "runtime normalized to Ideal",
		Columns: []string{"indirect", "other", "total", "perfpref"}}
	for _, w := range r.workloads(PaperWorkloads()) {
		ideal, err := r.run(w, Config{System: SystemIdeal})
		if err != nil {
			return nil, err
		}
		base, err := r.run(w, Config{System: SystemBaseline})
		if err != nil {
			return nil, err
		}
		perf, err := r.run(w, Config{System: SystemPerfect})
		if err != nil {
			return nil, err
		}
		norm := float64(base.Cycles) / float64(ideal.Cycles)
		// Split the normalized runtime by stall attribution.
		stalls := float64(base.StallIndirect + base.StallOther)
		indFrac := 0.0
		if stalls > 0 {
			// Fraction of time beyond Ideal spent on indirect stalls.
			indFrac = float64(base.StallIndirect) / stalls
		}
		beyond := norm - 1
		if beyond < 0 {
			beyond = 0
		}
		t.AddRow(w, beyond*indFrac, norm-beyond*indFrac,
			norm, float64(perf.Cycles)/float64(ideal.Cycles))
	}
	t.AddAverage()
	return t, nil
}

func expFig9(opt ExpOptions) (*Table, error) {
	r := newRunner(opt)
	t := &Table{ID: "fig9", Title: fmt.Sprintf("normalized throughput, %d cores (PerfPref = 1)", opt.withDefaults().Cores),
		Columns: []string{"perfpref", "base", "imp", "swpref"}}
	for _, w := range r.workloads(PaperWorkloads()) {
		perf, err := r.run(w, Config{System: SystemPerfect})
		if err != nil {
			return nil, err
		}
		vals := []float64{1}
		for _, sys := range []System{SystemBaseline, SystemIMP, SystemSWPrefetch} {
			res, err := r.run(w, Config{System: sys})
			if err != nil {
				return nil, err
			}
			vals = append(vals, float64(perf.Cycles)/float64(res.Cycles))
		}
		t.AddRow(w, vals...)
	}
	t.AddAverage()
	return t, nil
}

func expTable3(opt ExpOptions) (*Table, error) {
	r := newRunner(opt)
	t := &Table{ID: "table3", Title: "prefetching effectiveness (latency normalized to PerfPref)",
		Columns: []string{"str.cov", "str.acc", "str.lat", "imp.cov", "imp.acc", "imp.lat"}}
	for _, w := range r.workloads(PaperWorkloads()) {
		perf, err := r.run(w, Config{System: SystemPerfect})
		if err != nil {
			return nil, err
		}
		base, err := r.run(w, Config{System: SystemBaseline})
		if err != nil {
			return nil, err
		}
		impr, err := r.run(w, Config{System: SystemIMP})
		if err != nil {
			return nil, err
		}
		t.AddRow(w,
			base.Coverage, base.Accuracy, base.AMAT/perf.AMAT,
			impr.Coverage, impr.Accuracy, impr.AMAT/perf.AMAT)
	}
	t.AddAverage()
	return t, nil
}

func expFig10(opt ExpOptions) (*Table, error) {
	r := newRunner(opt)
	t := &Table{ID: "fig10", Title: "instruction count normalized to Base",
		Columns: []string{"base", "imp", "swpref"}}
	for _, w := range r.workloads(PaperWorkloads()) {
		base, err := r.run(w, Config{System: SystemBaseline})
		if err != nil {
			return nil, err
		}
		impr, err := r.run(w, Config{System: SystemIMP})
		if err != nil {
			return nil, err
		}
		sw, err := r.run(w, Config{System: SystemSWPrefetch})
		if err != nil {
			return nil, err
		}
		b := float64(base.Instructions)
		t.AddRow(w, 1, float64(impr.Instructions)/b, float64(sw.Instructions)/b)
	}
	t.AddAverage()
	return t, nil
}

func expFig11(opt ExpOptions) (*Table, error) {
	r := newRunner(opt)
	t := &Table{ID: "fig11", Title: fmt.Sprintf("partial cacheline accessing, %d cores (normalized to PerfPref)", opt.withDefaults().Cores),
		Columns: []string{"imp", "partial-noc", "partial-noc+dram", "ideal"}}
	for _, w := range r.workloads(PaperWorkloads()) {
		perf, err := r.run(w, Config{System: SystemPerfect})
		if err != nil {
			return nil, err
		}
		vals := make([]float64, 0, 4)
		for _, sys := range []System{SystemIMP, SystemIMPPartialNoC, SystemIMPPartial, SystemIdeal} {
			res, err := r.run(w, Config{System: sys})
			if err != nil {
				return nil, err
			}
			vals = append(vals, float64(perf.Cycles)/float64(res.Cycles))
		}
		t.AddRow(w, vals...)
	}
	t.AddAverage()
	return t, nil
}

func expFig12(opt ExpOptions) (*Table, error) {
	r := newRunner(opt)
	t := &Table{ID: "fig12", Title: "NoC and DRAM traffic with partial accessing (normalized to full-line IMP)",
		Columns: []string{"noc", "dram"}}
	for _, w := range r.workloads(PaperWorkloads()) {
		full, err := r.run(w, Config{System: SystemIMP})
		if err != nil {
			return nil, err
		}
		part, err := r.run(w, Config{System: SystemIMPPartial})
		if err != nil {
			return nil, err
		}
		t.AddRow(w,
			float64(part.NoCFlitHops)/float64(full.NoCFlitHops),
			float64(part.DRAMBytes)/float64(full.DRAMBytes))
	}
	t.AddAverage()
	return t, nil
}

func expFig13(opt ExpOptions) (*Table, error) {
	r := newRunner(opt)
	t := &Table{ID: "fig13", Title: "in-order vs out-of-order cores (normalized to Base on OoO)",
		Columns: []string{"base_io", "base_ooo", "imp_io", "imp_ooo", "partial_io", "partial_ooo"}}
	for _, w := range r.workloads([]string{"pagerank", "sgd"}) {
		ref, err := r.run(w, Config{System: SystemBaseline, OutOfOrder: true})
		if err != nil {
			return nil, err
		}
		vals := make([]float64, 0, 6)
		for _, sys := range []System{SystemBaseline, SystemIMP, SystemIMPPartial} {
			for _, ooo := range []bool{false, true} {
				res, err := r.run(w, Config{System: sys, OutOfOrder: ooo})
				if err != nil {
					return nil, err
				}
				vals = append(vals, float64(ref.Cycles)/float64(res.Cycles))
			}
		}
		// Reorder to (io, ooo) per system as the columns state.
		t.AddRow(w, vals...)
	}
	return t, nil
}

func expSensitivity(id, title string, values []int, def int, set func(*Config, int)) func(ExpOptions) (*Table, error) {
	return func(opt ExpOptions) (*Table, error) {
		r := newRunner(opt)
		cols := make([]string, len(values))
		for i, v := range values {
			cols[i] = fmt.Sprintf("%d", v)
		}
		t := &Table{ID: id, Title: title, Columns: cols,
			Notes: fmt.Sprintf("normalized to the default value %d", def)}
		for _, w := range r.workloads(PaperWorkloads()) {
			var ref *Result
			results := make([]*Result, len(values))
			for i, v := range values {
				cfg := Config{System: SystemIMP}
				set(&cfg, v)
				res, err := r.run(w, cfg)
				if err != nil {
					return nil, err
				}
				results[i] = res
				if v == def {
					ref = res
				}
			}
			vals := make([]float64, len(values))
			for i, res := range results {
				vals[i] = float64(ref.Cycles) / float64(res.Cycles)
			}
			t.AddRow(w, vals...)
		}
		t.AddAverage()
		return t, nil
	}
}

func expFig14(opt ExpOptions) (*Table, error) {
	return expSensitivity("fig14", "PT size sensitivity", []int{8, 16, 32}, 16,
		func(c *Config, v int) { c.PTEntries = v })(opt)
}

func expFig15(opt ExpOptions) (*Table, error) {
	return expSensitivity("fig15", "IPD size sensitivity", []int{2, 4, 8}, 4,
		func(c *Config, v int) { c.IPDEntries = v })(opt)
}

func expFig16(opt ExpOptions) (*Table, error) {
	return expSensitivity("fig16", "max prefetch distance sensitivity", []int{4, 8, 16, 32}, 16,
		func(c *Config, v int) { c.MaxPrefetchDistance = v })(opt)
}

func expStorage(opt ExpOptions) (*Table, error) {
	t := &Table{ID: "storage", Title: "IMP storage cost in bits (§6.4)",
		Columns: []string{"bits", "per-entry"},
		Notes:   "paper: PT < 2 Kbit, IPD ~3.5 Kbit, total ~5.5 Kbit (0.7 KB); GP ~3.4 Kbit"}
	c := StorageCost(false)
	t.AddRow("PT(indirect)", float64(c.PTBits), float64(c.PTEntryBits))
	t.AddRow("IPD", float64(c.IPDBits), float64(c.IPDEntryBits))
	t.AddRow("total", float64(c.TotalBits()), 0)
	cg := StorageCost(true)
	t.AddRow("GP", float64(cg.GPBits), float64(cg.GPEntryBits))
	t.AddRow("total+GP", float64(cg.TotalBits()), 0)
	return t, nil
}

func expGHB(opt ExpOptions) (*Table, error) {
	r := newRunner(opt)
	t := &Table{ID: "ghb", Title: "GHB adds (almost) nothing over stream on indirect workloads (§5.4)",
		Columns: []string{"base", "ghb", "imp"}}
	for _, w := range r.workloads(PaperWorkloads()) {
		base, err := r.run(w, Config{System: SystemBaseline})
		if err != nil {
			return nil, err
		}
		ghb, err := r.run(w, Config{System: SystemGHB})
		if err != nil {
			return nil, err
		}
		impr, err := r.run(w, Config{System: SystemIMP})
		if err != nil {
			return nil, err
		}
		t.AddRow(w, 1,
			float64(base.Cycles)/float64(ghb.Cycles),
			float64(base.Cycles)/float64(impr.Cycles))
	}
	t.AddAverage()
	return t, nil
}
