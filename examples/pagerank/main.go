// Pagerank study: sweep core counts on the graph-analytics workload that
// motivates the paper's introduction, comparing Base, IMP and IMP with
// partial cacheline accessing — a miniature of Fig 9 + Fig 11.
package main

import (
	"fmt"
	"log"

	"github.com/impsim/imp"
)

func main() {
	fmt.Println("pagerank: normalized throughput (PerfPref = 1.00)")
	fmt.Printf("%-8s %10s %10s %10s %10s\n", "cores", "base", "imp", "imp+part", "ideal")

	for _, cores := range []int{16, 64} {
		prog, err := imp.BuildProgram("pagerank", cores, 0.5, false, 0)
		if err != nil {
			log.Fatal(err)
		}
		perf, err := imp.RunProgram(prog, imp.Config{Cores: cores, System: imp.SystemPerfect})
		if err != nil {
			log.Fatal(err)
		}
		norm := func(sys imp.System) float64 {
			res, err := imp.RunProgram(prog, imp.Config{Cores: cores, System: sys})
			if err != nil {
				log.Fatal(err)
			}
			return float64(perf.Cycles) / float64(res.Cycles)
		}
		fmt.Printf("%-8d %10.2f %10.2f %10.2f %10.2f\n", cores,
			norm(imp.SystemBaseline), norm(imp.SystemIMP),
			norm(imp.SystemIMPPartial), norm(imp.SystemIdeal))
	}

	// Show what IMP learned on the 64-core run.
	res, err := imp.Run(imp.Config{Workload: "pagerank", Cores: 64, Scale: 0.5, System: imp.SystemIMP})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nIMP at 64 cores: %d primary patterns (rank[col[e]]), %d secondary (deg[col[e]], multi-way)\n",
		res.PatternsDetected, res.SecondaryPatterns)
	fmt.Printf("coverage %.2f, accuracy %.2f\n", res.Coverage, res.Accuracy)
}
