// SpMV + partial cacheline accessing: reproduce the paper's §4 story on
// the sparse linear-algebra kernel — indirect accesses waste most of each
// fetched line, and the granularity predictor claws the bandwidth back.
package main

import (
	"fmt"
	"log"

	"github.com/impsim/imp"
)

func main() {
	const cores = 16
	prog, err := imp.BuildProgram("spmv", cores, 0.3, false, 0)
	if err != nil {
		log.Fatal(err)
	}

	type row struct {
		name string
		sys  imp.System
	}
	rows := []row{
		{"imp (full lines)", imp.SystemIMP},
		{"imp + partial NoC", imp.SystemIMPPartialNoC},
		{"imp + partial NoC+DRAM", imp.SystemIMPPartial},
	}

	var fullNoC, fullDRAM float64
	fmt.Printf("%-24s %10s %12s %12s\n", "system", "cycles", "NoC traffic", "DRAM bytes")
	for i, r := range rows {
		res, err := imp.RunProgram(prog, imp.Config{Cores: cores, System: r.sys})
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			fullNoC, fullDRAM = float64(res.NoCFlitHops), float64(res.DRAMBytes)
		}
		fmt.Printf("%-24s %10d %11.1f%% %11.1f%%\n", r.name, res.Cycles,
			100*float64(res.NoCFlitHops)/fullNoC,
			100*float64(res.DRAMBytes)/fullDRAM)
	}

	fmt.Printf("\nsector-cache budget: %v\n", imp.StorageCost(true))
}
