// Custom workload: trace your own kernel against the simulator using the
// internal instrumentation layer (possible inside this module; external
// users would vendor the packages). The kernel below is a hash-join probe
// — build side scanned, bucket heads read indirectly — a pattern the paper
// does not evaluate but IMP captures the same way.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/impsim/imp/internal/mem"
	"github.com/impsim/imp/internal/sim"
	"github.com/impsim/imp/internal/trace"
)

func main() {
	const (
		cores   = 16
		keys    = 100_000
		buckets = 1 << 18
	)
	rng := rand.New(rand.NewSource(1))

	// Build the address space: a probe-key array (streamed) holding
	// precomputed bucket indices, and the bucket-head table (indirect).
	space := mem.NewSpace()
	probe := space.AllocInt32("probe_keys", keys)
	heads := space.AllocInt64("bucket_heads", buckets)
	for i := range probe.Int32s() {
		probe.Int32s()[i] = int32(rng.Intn(buckets))
	}

	// Trace the probe loop on each core: load key, load bucket head,
	// compare (the classic A[B[i]] shape).
	const (
		pcKey  trace.PC = 1
		pcHead trace.PC = 2
	)
	traces := make([]*trace.Trace, cores)
	for c := 0; c < cores; c++ {
		tb := trace.NewBuilder()
		lo, hi := c*keys/cores, (c+1)*keys/cores
		for i := lo; i < hi; i++ {
			tb.Load(pcKey, probe.Addr(i), 4, trace.KindStream)
			tb.LoadDep(pcHead, heads.Addr(int(probe.Int32s()[i])), 8, trace.KindIndirect)
			tb.Compute(6)
		}
		traces[c] = tb.Trace()
	}
	prog := &trace.Program{Space: space, Traces: traces}
	if err := prog.Validate(); err != nil {
		log.Fatal(err)
	}

	for _, pf := range []sim.PrefetcherKind{sim.PrefetchStream, sim.PrefetchIMP} {
		cfg := sim.DefaultConfig(cores)
		cfg.Prefetcher = pf
		m, err := sim.Run(prog, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %9d cycles | coverage %.2f accuracy %.2f | %s\n",
			pf, m.Cycles, m.Coverage(), m.Accuracy(), m)
	}
}
