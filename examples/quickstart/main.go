// Quickstart: simulate one workload on the paper's three headline
// configurations and print the speedups — the fastest way to see IMP work.
package main

import (
	"fmt"
	"log"

	"github.com/impsim/imp"
)

func main() {
	// Build the SpMV trace once (16 cores, 20% of benchmark size) and
	// replay it under three system configurations.
	prog, err := imp.BuildProgram("spmv", 16, 0.2, false, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spmv: %d memory accesses traced\n\n", prog.Accesses())

	systems := []imp.System{imp.SystemBaseline, imp.SystemIMP, imp.SystemPerfect}
	var base int64
	for _, sys := range systems {
		res, err := imp.RunProgram(prog, imp.Config{Cores: 16, System: sys})
		if err != nil {
			log.Fatal(err)
		}
		if sys == imp.SystemBaseline {
			base = res.Cycles
		}
		fmt.Printf("%-10s %9d cycles  speedup %.2fx  coverage %.2f  accuracy %.2f\n",
			sys, res.Cycles, float64(base)/float64(res.Cycles), res.Coverage, res.Accuracy)
	}

	fmt.Printf("\nIMP hardware budget: %v\n", imp.StorageCost(false))
}
