module github.com/impsim/imp

go 1.22
